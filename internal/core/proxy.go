package core

import (
	"fmt"

	"repro/internal/codoms"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// retCapReg is the capability register the proxy uses for the return
// capability it mints in prepare_ret (P3).
const retCapReg = codoms.NumCapRegs - 1

// DCS handling modes baked into the call descriptor (§5.2.3).
const (
	dcsNone = iota
	dcsInteg
	dcsConf
)

// callDesc is a proxy's precompiled call descriptor: everything the
// per-call path can resolve ahead of time, folded flat at proxy
// instantiation so that invoke is straight-line code. This mirrors the
// paper's run-time specialization (§6.1.1) one level further down — the
// template is specialized not just in code shape but in the exact cost
// sums, branch decisions and check verdicts the call will need.
type callDesc struct {
	// Isolation-stub and proxy policy costs, pre-summed from the merged
	// policy flags (the former stubEnter/stubExit/branch chains).
	callerEnter sim.Time
	callerExit  sim.Time
	calleeEnter sim.Time
	calleeExit  sim.Time
	enter       sim.Time // prepare_ret + policy enter (charged to BlockProxy)
	exit        sim.Time // deprepare_ret + policy exit (charged to BlockProxy)
	stubBlock   stats.Block
	dcsMode     uint8
	capArgs     int
	capRets     int

	// deadErr is the preconstructed dead-callee error: the message only
	// depends on the callee process, so the hot path never calls
	// fmt.Errorf.
	deadErr error

	// Memoized architectural check verdicts for the proxy's three control
	// transfers and its privileged-instruction check. Each revalidates
	// against the APL epoch and page-table generation on use.
	callIn    codoms.CallVerdict // caller code -> proxy entry point
	priv      codoms.PrivVerdict // privileged-capability check at the proxy
	callEntry codoms.CallVerdict // proxy -> target entry point
	callRet   codoms.CallVerdict // callee -> proxy_ret (via the minted capability)
}

// Proxy is one run-time-generated trusted code thunk bridging calls from
// a caller domain into one entry point of a callee domain (Fig. 3,
// domain P). Its code pages carry the CODOMs privileged-capability bit,
// so it can run the privileged parts of the isolation policy (process
// tracking, stack switching, DCS bounds) without entering the kernel.
type Proxy struct {
	rt         *Runtime
	tmpl       *ProxyTemplate
	entry      entryImpl
	mp         mergedPolicy
	sig        Signature
	domTag     codoms.Tag
	addr       mem.Addr // aligned proxy entry point
	retAddr    mem.Addr // aligned proxy_ret
	callerProc *kernel.Process
	calleeProc *kernel.Process
	cross      bool
	desc       callDesc
}

// Template returns the template this proxy was specialized from.
func (px *Proxy) Template() *ProxyTemplate { return px.tmpl }

// Cross reports whether the proxy crosses processes.
func (px *Proxy) Cross() bool { return px.cross }

// liveRegs is the register count the stubs must preserve.
func (px *Proxy) liveRegs() int {
	if px.rt.FoldStubs {
		return px.rt.WorstCaseLiveRegs
	}
	if px.sig.LiveRegs > 0 {
		return px.sig.LiveRegs
	}
	return 6
}

// stubEnter is the isolate_call cost of one side's user stub.
func (px *Proxy) stubEnter(props IsoProps) sim.Time {
	p := px.rt.M.P
	var d sim.Time
	if props.Has(RegIntegrity) {
		d += sim.Time(px.liveRegs()) * p.RegSave
	}
	if props.Has(RegConfidentiality) {
		d += sim.Time(16-px.sig.InRegs) * p.RegZero
	}
	if props.Has(StackIntegrity) {
		d += 2 * p.CapCreate // argument window + unused-area capability
	}
	return d
}

// stubExit is the deisolate_call / isolate_ret cost of one side's stub.
func (px *Proxy) stubExit(props IsoProps) sim.Time {
	p := px.rt.M.P
	var d sim.Time
	if props.Has(RegIntegrity) {
		d += sim.Time(px.liveRegs()) * p.RegSave // restore
	}
	if props.Has(RegConfidentiality) {
		d += sim.Time(16-px.sig.OutRegs) * p.RegZero
	}
	if props.Has(StackIntegrity) {
		d += 2 * p.CapPushPop // drop the argument capabilities
	}
	return d
}

// stubBlock returns the accounting block stubs charge to: inlined stubs
// are user code co-optimized with the application; folded stubs execute
// inside the proxy.
func (px *Proxy) stubBlock() stats.Block {
	if px.rt.FoldStubs {
		return stats.BlockProxy
	}
	return stats.BlockStub
}

// compile folds the policy-flag branches and cost arithmetic of the call
// path into the proxy's descriptor. It runs once, at entry_request time,
// against the runtime configuration (FoldStubs, cost model) in force
// then — exactly when the paper's prototype specializes the proxy code.
func (px *Proxy) compile() {
	p := px.rt.M.P
	d := &px.desc
	d.callerEnter = px.stubEnter(px.mp.callerStub)
	d.callerExit = px.stubExit(px.mp.callerStub)
	d.calleeEnter = px.stubEnter(px.mp.calleeStub)
	d.calleeExit = px.stubExit(px.mp.calleeStub)
	d.stubBlock = px.stubBlock()
	enter := p.StackCheck + p.KCSPush + p.APLCacheLookup + p.CapCreate
	exit := p.KCSPop
	if px.mp.proxy.Has(StackConfIntegrity) {
		// isolate_pcall: stack switch plus the by-signature copies.
		enter += p.StackSwitch + p.Copy(px.sig.StackBytes)
		exit += p.StackSwitch + p.Copy(px.sig.StackRet)
	}
	switch {
	case px.mp.proxy.Has(DCSConfIntegrity):
		d.dcsMode = dcsConf
		enter += p.DCSSwitch + sim.Time(px.sig.CapArgs)*p.CapLoadStore
		exit += p.DCSSwitch + sim.Time(px.sig.CapRets)*p.CapLoadStore
	case px.mp.proxy.Has(DCSIntegrity):
		d.dcsMode = dcsInteg
		enter += p.DCSAdjust
		exit += p.DCSAdjust
	}
	d.enter, d.exit = enter, exit
	d.capArgs, d.capRets = px.sig.CapArgs, px.sig.CapRets
	d.deadErr = fmt.Errorf("dipc: callee process %q is dead", px.calleeProc.Name)
}

// returnCap returns the P3 return capability for this proxy on the
// calling thread, minting it on first use and reusing the cached value
// while nothing it was derived from (the APLs, the page table) has
// changed. The simulated CapCreate cost is part of desc.enter — the
// cache only avoids re-deriving a bit-identical value on the host.
//
//dipcvet:noalloc
func (px *Proxy) returnCap(ts *threadState, hw *codoms.ThreadCtx) (codoms.Capability, error) {
	arch, pt := px.rt.M.Arch, px.rt.PT
	if rc, ok := ts.retCaps[px]; ok && rc.epoch == arch.Epoch() && rc.ptGen == pt.Gen() {
		return rc.cap, nil
	}
	c, err := arch.NewFromAPL(hw, pt, px.domTag, px.retAddr,
		int(arch.EntryAlign), codoms.PermCall, codoms.CapSync, nil)
	if err != nil {
		return codoms.Capability{}, err
	}
	if ts.retCaps == nil {
		ts.retCaps = make(map[*Proxy]retCapEntry) //dipcvet:alloc-ok first-use memoization; steady state hits the cache above
	}
	ts.retCaps[px] = retCapEntry{cap: c, epoch: arch.Epoch(), ptGen: pt.Gen()} //dipcvet:alloc-ok first-use memoization insert, amortized across all calls
	return c, nil
}

// Call bridges one synchronous call through the proxy: Fig. 3 steps
// 1–3 plus the return path. It performs the real CODOMs checks (the
// caller needs call permission to the proxy domain; the callee returns
// through the minted return capability), maintains the KCS, migrates the
// thread across processes, and charges every modeled instruction.
//
// A fault raised below this frame (via core.Fault, a CODOMs violation,
// or a process kill) unwinds here and surfaces as the returned error,
// after all proxy state has been restored (P3/P5).
func (ie *ImportedEntry) Call(t *kernel.Thread, in *Args) (*Args, error) {
	return ie.proxy.invoke(t, in)
}

//dipcvet:noalloc
func (px *Proxy) invoke(t *kernel.Thread, in *Args) (out *Args, err error) {
	rt := px.rt
	p := rt.M.P
	hw := t.HW
	ts := state(t)
	d := &px.desc
	if px.calleeProc.Dead {
		return nil, d.deadErr
	}
	if in == nil {
		// Fresh value, not a shared zero: entries may legitimately echo
		// their input as the result, which the caller then owns and may
		// mutate. Nil-arg calls are off the measured hot paths.
		in = &Args{} //dipcvet:alloc-ok cold branch: measured hot paths always pass non-nil args
	}
	rt.crossCalls++

	// ---- caller stub: isolate_call ----
	t.Exec(d.callerEnter, d.stubBlock)

	// ---- architectural call into the proxy (P2: needs call permission
	// to the proxy domain, lands only on the aligned entry) ----
	callerIP := hw.IP()
	callerDom := hw.CodeDomain(rt.PT)
	if cerr := rt.M.Arch.CallCached(hw, rt.PT, px.addr, &d.callIn); cerr != nil {
		return nil, cerr // hardware fault reflected to the caller
	}
	t.Exec(p.FuncCall, stats.BlockUser)
	if perr := rt.M.Arch.CheckPrivCached(hw, rt.PT, &d.priv); perr != nil {
		return nil, perr // unreachable: proxy pages are privileged
	}

	// ---- proxy entry: prepare_ret + policy enter ----
	fr := kcsEntry{proxy: px, callerProc: t.Process(), callerIP: callerIP,
		callerDom: callerDom, callerPTGen: rt.PT.Gen()}
	retCap, rerr := px.returnCap(ts, hw)
	if rerr != nil {
		hw.SetIP(callerIP)
		return nil, rerr
	}
	fr.savedCap = hw.CapRegs[retCapReg]
	hw.CapRegs[retCapReg] = retCap

	switch d.dcsMode {
	case dcsConf:
		// isolate_pcall: give the callee a separate capability stack
		// holding only the signature's capability arguments.
		tok, derr := hw.DCS.SwitchTo(min(d.capArgs, hw.DCS.Depth()))
		if derr != nil {
			hw.CapRegs[retCapReg] = fr.savedCap
			hw.SetIP(callerIP)
			return nil, derr
		}
		fr.dcsToken = tok
	case dcsInteg:
		old, derr := hw.DCS.SetBase(hw.DCS.Top() - min(d.capArgs, hw.DCS.Depth()))
		if derr != nil {
			hw.CapRegs[retCapReg] = fr.savedCap
			hw.SetIP(callerIP)
			return nil, derr
		}
		fr.oldDCSBase = old
	}
	t.Exec(d.enter, stats.BlockProxy)

	// Pre-size the KCS to the deepest chain this proxy's template has
	// carried, so a fresh thread entering a deep chain grows it once.
	if c := px.tmpl.maxDepth; cap(ts.kcs) < c {
		grown := make([]kcsEntry, len(ts.kcs), c) //dipcvet:alloc-ok one-time growth to the template's max depth
		copy(grown, ts.kcs)
		ts.kcs = grown
	}
	ts.kcs = append(ts.kcs, fr) //dipcvet:alloc-ok pre-sized above; steady state reuses the pooled capacity
	depth := len(ts.kcs)
	if depth > px.tmpl.maxDepth {
		px.tmpl.maxDepth = depth
	}

	if px.cross {
		// track_process_call: in-place process switch (§6.1.2).
		px.trackProcessCall(t, ts)
		ts.kcs[depth-1].migrated = true
		t.Exec(p.TLSSwitch, stats.BlockTLS)
	}

	// Crash unwinding: restore this frame and either absorb or keep
	// propagating (§5.2.1).
	//dipcvet:alloc-ok open-coded defer; the closure stays on the stack
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		u, ok := r.(*unwindError)
		if !ok {
			panic(r)
		}
		px.unwindFrame(t, ts, depth)
		if u.depth == depth {
			out, err = nil, u.err
			return
		}
		panic(u)
	}()

	// ---- call into the target entry point ----
	if cerr := rt.M.Arch.CallCached(hw, rt.PT, px.entry.addr, &d.callEntry); cerr != nil {
		px.unwindFrame(t, ts, depth)
		return nil, cerr
	}
	t.Exec(p.FuncCall, stats.BlockUser)

	// ---- callee stub + target function ----
	t.Exec(d.calleeEnter, d.stubBlock)
	result := px.entry.desc.Fn(t, in)
	t.Exec(d.calleeExit, d.stubBlock)

	// ---- return into proxy_ret through the minted capability (P3) ----
	if cerr := rt.M.Arch.CallCached(hw, rt.PT, px.retAddr, &d.callRet); cerr != nil {
		px.unwindFrame(t, ts, depth)
		return nil, cerr
	}

	// ---- proxy_ret: deprepare_ret + policy exit ----
	switch d.dcsMode {
	case dcsConf:
		nres := min(d.capRets, hw.DCS.Depth())
		if derr := hw.DCS.RestoreFrom(ts.kcs[depth-1].dcsToken, nres); derr != nil {
			px.unwindFrame(t, ts, depth)
			return nil, derr
		}
		ts.kcs[depth-1].dcsToken = nil
	case dcsInteg:
		if _, derr := hw.DCS.SetBase(ts.kcs[depth-1].oldDCSBase); derr != nil {
			px.unwindFrame(t, ts, depth)
			return nil, derr
		}
	}
	if px.cross {
		px.trackProcessRet(t, &ts.kcs[depth-1])
		t.Exec(p.TLSSwitch, stats.BlockTLS)
	}
	hw.CapRegs[retCapReg] = ts.kcs[depth-1].savedCap
	ts.kcs = ts.kcs[:depth-1]
	t.Exec(d.exit, stats.BlockProxy)
	if fr.callerPTGen == rt.PT.Gen() {
		// The caller's code page cannot have changed domains: reinstate
		// the subject-domain cache along with the instruction pointer.
		hw.SetIPInDomain(callerIP, fr.callerDom)
	} else {
		hw.SetIP(callerIP)
	}

	// ---- caller stub: deisolate_call ----
	t.Exec(d.callerExit, d.stubBlock)
	return result, nil
}

// unwindFrame restores the proxy state recorded in the KCS entry at
// depth (1-based) during fault unwinding or a failed call, then pops it.
// The restore mirrors proxy_ret: process migration, TLS, DCS and the
// spilled capability register.
func (px *Proxy) unwindFrame(t *kernel.Thread, ts *threadState, depth int) {
	if depth != len(ts.kcs) {
		panic(fmt.Sprintf("dipc: unwind depth %d does not match KCS depth %d", depth, len(ts.kcs)))
	}
	p := px.rt.M.P
	fr := &ts.kcs[depth-1]
	hw := t.HW
	cost := p.KCSPop
	if fr.migrated {
		t.MigrateTo(fr.callerProc)
		cost += p.TrackProcessHot/2 + p.TLSSwitch
	}
	if fr.dcsToken != nil {
		// Discard the callee's capability stack; no results cross back.
		_ = hw.DCS.RestoreFrom(fr.dcsToken, 0)
		cost += p.DCSSwitch
	} else if px.mp.proxy.Has(DCSIntegrity) {
		if fr.oldDCSBase <= hw.DCS.Top() {
			_, _ = hw.DCS.SetBase(fr.oldDCSBase)
		}
		cost += p.DCSAdjust
	}
	hw.CapRegs[retCapReg] = fr.savedCap
	ts.kcs = ts.kcs[:depth-1]
	t.Exec(cost, stats.BlockProxy)
	hw.SetIP(fr.callerIP)
}
