package core

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/stats"
)

// Exec implements the dIPC side of §6.1.3's fork/exec semantics: when a
// (fork-disabled) process execs a position-independent executable, dIPC
// is re-enabled — the process joins the runtime's global virtual address
// space at a unique address, on the shared page table. Non-PIC images
// stay conventional processes.
func (rt *Runtime) Exec(t *kernel.Thread, proc *kernel.Process, name string, pic bool) error {
	rt.M.ExecImage(t, proc, name, pic)
	if !pic {
		return nil // conventional process: dIPC stays disabled
	}
	var err error
	t.Syscall(func() {
		t.Exec(t.Machine().P.FutexWake, stats.BlockKernel)
		proc.DIPC = true
		proc.PageTable = rt.PT
		proc.VA = mem.NewSuballoc(rt.M.Global, name)
		base, aerr := proc.VA.Alloc(mem.PageSize)
		if aerr != nil {
			err = fmt.Errorf("dipc: exec: allocating TLS: %w", aerr)
			return
		}
		proc.TLSBase = base
	})
	return err
}
