package core

import (
	"fmt"

	"repro/internal/codoms"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// GrantHandle records one APL modification so it can later be revoked.
type GrantHandle struct {
	rt   *Runtime
	src  codoms.Tag
	dst  codoms.Tag
	perm codoms.Perm
	live bool
}

// Src returns the granting domain's tag.
func (g *GrantHandle) Src() codoms.Tag { return g.src }

// Dst returns the domain access was granted to.
func (g *GrantHandle) Dst() codoms.Tag { return g.dst }

// Live reports whether the grant is still in force.
func (g *GrantHandle) Live() bool { return g.live }

// GrantCreate allows code in the domain of src to access the domain of
// dst with dst's handle permission, by editing src's APL (Table 2). It
// requires owner permission on src — only a domain's owner can open it
// up (P1: "processes can only access each other's code and data when the
// accessee explicitly grants that right"; here the accessor's owner
// extends its own reach toward a domain whose handle it was explicitly
// given).
func (rt *Runtime) GrantCreate(t *kernel.Thread, src, dst DomainHandle) (*GrantHandle, error) {
	if src.perm != PermOwner {
		return nil, errBadPerm("grant_create", PermOwner, src.perm)
	}
	if !dst.Valid() {
		return nil, fmt.Errorf("dipc: grant_create with invalid destination handle")
	}
	archPerm := dst.perm.arch()
	if archPerm == codoms.PermNil {
		return nil, fmt.Errorf("dipc: grant_create from a nil-permission handle")
	}
	var g *GrantHandle
	var err error
	t.Syscall(func() {
		t.Exec(t.Machine().P.FutexWake, stats.BlockKernel) // APL edit
		err = rt.M.Arch.Grant(src.tag, dst.tag, archPerm)
		if err == nil {
			g = &GrantHandle{rt: rt, src: src.tag, dst: dst.tag, perm: archPerm, live: true}
		}
	})
	return g, err
}

// GrantRevoke sets the permission for the grant's destination back to
// nil in the source's APL.
func (rt *Runtime) GrantRevoke(t *kernel.Thread, g *GrantHandle) error {
	if g == nil || !g.live {
		return fmt.Errorf("dipc: grant_revoke on dead grant")
	}
	var err error
	t.Syscall(func() {
		t.Exec(t.Machine().P.FutexWake, stats.BlockKernel)
		err = rt.M.Arch.Revoke(g.src, g.dst)
		g.live = false
	})
	return err
}
