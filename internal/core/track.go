package core

import (
	"repro/internal/codoms"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/stats"
)

// procEntry is the per-thread record locating a target process: the
// process plus this thread's per-process thread identifier (§5.2.1:
// "primary threads appear with different identifiers on each process").
type procEntry struct {
	proc *kernel.Process
	tid  int
}

// trackNode is one node of the per-thread binary search tree indexed by
// domain tag (the §6.1.2 warm path).
type trackNode struct {
	tag         codoms.Tag
	entry       *procEntry
	left, right *trackNode
}

func (n *trackNode) find(tag codoms.Tag) *procEntry {
	for n != nil {
		switch {
		case tag == n.tag:
			return n.entry
		case tag < n.tag:
			n = n.left
		default:
			n = n.right
		}
	}
	return nil
}

func insertNode(n *trackNode, tag codoms.Tag, e *procEntry) *trackNode {
	if n == nil {
		return &trackNode{tag: tag, entry: e}
	}
	switch {
	case tag < n.tag:
		n.left = insertNode(n.left, tag, e)
	case tag > n.tag:
		n.right = insertNode(n.right, tag, e)
	default:
		n.entry = e
	}
	return n
}

// kcsInlineDepth is the kernel control stack depth held inline in the
// thread state: chains up to this deep never allocate a KCS frame.
// Deeper chains spill to a heap slice, pre-sized from the proxy
// template's deepest observed chain.
const kcsInlineDepth = 8

// retCapEntry is one cached P3 return capability, valid while the APLs
// and the page table it was derived under are unchanged.
type retCapEntry struct {
	cap   codoms.Capability
	epoch uint64
	ptGen uint64
}

// threadState is the dIPC per-thread state hung off kernel.Thread.Ext:
// the kernel control stack, the process-tracking cache array (indexed by
// the 5-bit hardware domain tag), the tracking tree and the per-proxy
// return-capability cache.
type threadState struct {
	kcs        []kcsEntry
	kcsInline  [kcsInlineDepth]kcsEntry
	retCaps    map[*Proxy]retCapEntry
	trackCache [codoms.APLCacheSize]*procEntry
	trackTags  [codoms.APLCacheSize]codoms.Tag
	trackTree  *trackNode
	homeProc   *kernel.Process
	nextTIDs   map[int]int // per-target-process tid assignment
}

// kcsEntry is one kernel-control-stack frame: who called through which
// proxy, and everything the proxy must restore on return or unwind (P3).
type kcsEntry struct {
	proxy       *Proxy
	callerProc  *kernel.Process
	callerIP    mem.Addr
	callerDom   codoms.Tag        // subject domain of the caller's code page
	callerPTGen uint64            // page-table generation callerDom was read under
	savedCap    codoms.Capability // capability register spilled for prepare_ret
	oldDCSBase  int               // DCS integrity restore point
	dcsToken    any               // DCS confidentiality restore token
	migrated    bool
}

// state returns (creating on first use) the thread's dIPC state and
// installs the fault unwinder.
func state(t *kernel.Thread) *threadState {
	if ts, ok := t.Ext.(*threadState); ok {
		return ts
	}
	ts := &threadState{
		homeProc: t.Process(),
		nextTIDs: make(map[int]int),
	}
	ts.kcs = ts.kcsInline[:0]
	t.Ext = ts
	installUnwinder(t, ts)
	return ts
}

// KCSDepth returns the thread's current cross-domain call depth
// (diagnostics and tests).
func KCSDepth(t *kernel.Thread) int {
	if ts, ok := t.Ext.(*threadState); ok {
		return len(ts.kcs)
	}
	return 0
}

// trackProcessCall implements the §6.1.2 lookup on the call path and
// migrates the thread into the target process. The hot path indexes a
// per-thread cache array with the hardware domain tag retrieved from the
// APL cache; the warm path walks the per-thread tree; the cold path
// upcalls into a management thread in the target process, which runs a
// system call to create the bookkeeping.
func (px *Proxy) trackProcessCall(t *kernel.Thread, ts *threadState) {
	p := t.Machine().P
	tag := px.calleeProc.DefaultTag
	if hw, err := t.HW.Cache.HWTagOf(tag); err == nil {
		if e := ts.trackCache[hw]; e != nil && ts.trackTags[hw] == tag && e.proc == px.calleeProc {
			t.Exec(p.TrackProcessHot, stats.BlockProxy)
			t.MigrateTo(px.calleeProc)
			return
		}
	}
	if e := ts.trackTree.find(tag); e != nil {
		// Warm: refill the APL cache slot and the cache array.
		hw := t.HW.Cache.Insert(tag)
		ts.trackCache[hw] = e
		ts.trackTags[hw] = tag
		t.Exec(p.TrackProcessWarm, stats.BlockProxy)
		t.MigrateTo(px.calleeProc)
		return
	}
	// Cold: upcall into the target process's management thread, which
	// creates the per-process thread identity via a system call.
	ts.nextTIDs[px.calleeProc.PID]++
	e := &procEntry{proc: px.calleeProc, tid: ts.nextTIDs[px.calleeProc.PID]}
	ts.trackTree = insertNode(ts.trackTree, tag, e)
	hw := t.HW.Cache.Insert(tag)
	ts.trackCache[hw] = e
	ts.trackTags[hw] = tag
	t.Exec(p.TrackProcessCold, stats.BlockKernel)
	t.MigrateTo(px.calleeProc)
}

// trackProcessRet restores the caller's process on return: current is
// simply reloaded from the KCS (§6.1.2).
func (px *Proxy) trackProcessRet(t *kernel.Thread, fr *kcsEntry) {
	t.Exec(t.Machine().P.TrackProcessHot/2, stats.BlockProxy)
	t.MigrateTo(fr.callerProc)
}
