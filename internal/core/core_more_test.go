package core

import (
	"testing"

	"repro/internal/codoms"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestCapabilityArgumentsFlowThroughDCS(t *testing.T) {
	// A caller passes a capability argument on the DCS under the
	// DCS-confidentiality policy: the callee sees exactly that one
	// entry, uses it to access the caller's buffer, and pushes a result
	// capability back.
	w := newWorld(1)
	var calleeSaw int
	var calleeAccess error
	var callerBuf mem.Addr
	capSig := Signature{InRegs: 2, OutRegs: 1, CapArgs: 1, CapRets: 1}
	w.m.Spawn(w.db, "db-init", nil, func(th *kernel.Thread) {
		w.rt.EnterProcessCode(th)
		eh, err := w.rt.EntryRegister(th, w.rt.DomDefault(th), []EntryDesc{{
			Name: "query",
			Fn: func(th *kernel.Thread, in *Args) *Args {
				calleeSaw = th.HW.DCS.Depth()
				if cap, err := th.HW.DCS.Pop(); err == nil {
					// Pop loads the capability into a register; only
					// register-resident capabilities authorize accesses.
					saved := th.HW.CapRegs[0]
					th.HW.CapRegs[0] = cap
					calleeAccess = w.rt.Arch().Check(th.HW, w.rt.PT, cap.Base, 8, codoms.AccessRead)
					th.HW.CapRegs[0] = saved
					_ = th.HW.DCS.Push(cap) // pass it back as the result
				}
				return &Args{}
			},
			Sig:    capSig,
			Policy: DCSConfIntegrity,
		}})
		if err != nil {
			t.Error(err)
			return
		}
		if err := w.rt.Publish(th, "/run/db.sock", eh); err != nil {
			t.Error(err)
		}
	})
	w.eng.Run()
	w.run(t, w.web, func(th *kernel.Thread) {
		// Allocate a buffer in the caller's domain and mint an async
		// capability over it.
		self := w.rt.DomDefault(th)
		var err error
		callerBuf, err = w.rt.DomMmap(th, self, mem.PageSize, mem.FlagWrite)
		if err != nil {
			t.Error(err)
			return
		}
		rc := &codoms.RevCounter{}
		cap, err := w.rt.Arch().NewFromAPL(th.HW, w.rt.PT, self.Tag(), callerBuf, 256,
			codoms.PermRead, codoms.CapAsync, rc)
		if err != nil {
			t.Error(err)
			return
		}
		if err := th.HW.DCS.Push(cap); err != nil {
			t.Error(err)
			return
		}
		ents, err := w.rt.MustImport(th, "/run/db.sock", []EntryDesc{{
			Name: "query", Sig: capSig, Policy: DCSConfIntegrity,
		}})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := ents[0].Call(th, &Args{Regs: []uint64{1, 2}}); err != nil {
			t.Error(err)
			return
		}
		// The result capability came back on the caller's stack.
		if th.HW.DCS.Depth() != 1 {
			t.Errorf("caller DCS depth after call = %d, want 1 result", th.HW.DCS.Depth())
		}
	})
	if calleeSaw != 1 {
		t.Fatalf("callee saw %d DCS entries, want exactly the 1 argument", calleeSaw)
	}
	if calleeAccess != nil {
		t.Fatalf("callee could not use the passed capability: %v", calleeAccess)
	}
}

func TestSigMismatchOnCapArgsRejected(t *testing.T) {
	w := newWorld(1)
	w.export(t, PolicyLow, func(th *kernel.Thread, in *Args) *Args { return in })
	var err error
	w.run(t, w.web, func(th *kernel.Thread) {
		eh, _ := w.rt.Resolve(th, "/run/db.sock")
		_, _, err = w.rt.EntryRequest(th, eh, []EntryDesc{{
			Name: "query", Sig: Signature{InRegs: 2, OutRegs: 1, CapArgs: 3},
		}})
	})
	if err == nil {
		t.Fatal("capability-argument count is part of the P4 signature")
	}
}

func TestKCSDepthDuringNestedCalls(t *testing.T) {
	w := newWorld(1)
	php := w.rt.NewProcess("php")
	var depthInDB int
	// db leaf records the depth.
	w.export(t, PolicyLow, func(th *kernel.Thread, in *Args) *Args {
		depthInDB = KCSDepth(th)
		return &Args{Regs: []uint64{1}}
	})
	var phpEnts []*ImportedEntry
	w.m.Spawn(php, "php-init", nil, func(th *kernel.Thread) {
		w.rt.EnterProcessCode(th)
		var err error
		phpEnts, err = w.rt.MustImport(th, "/run/db.sock", []EntryDesc{{
			Name: "query", Sig: Signature{InRegs: 2, OutRegs: 1},
		}})
		if err != nil {
			t.Error(err)
			return
		}
		eh, err := w.rt.EntryRegister(th, w.rt.DomDefault(th), []EntryDesc{{
			Name: "run",
			Fn: func(th *kernel.Thread, in *Args) *Args {
				out, err := phpEnts[0].Call(th, in)
				if err != nil {
					t.Error(err)
				}
				return out
			},
			Sig: Signature{InRegs: 2, OutRegs: 1},
		}})
		if err != nil {
			t.Error(err)
			return
		}
		w.rt.Publish(th, "/run/php.sock", eh)
	})
	w.eng.Run()
	w.run(t, w.web, func(th *kernel.Thread) {
		ents, err := w.rt.MustImport(th, "/run/php.sock", []EntryDesc{{
			Name: "run", Sig: Signature{InRegs: 2, OutRegs: 1},
		}})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := ents[0].Call(th, &Args{Regs: []uint64{1, 2}}); err != nil {
			t.Error(err)
		}
		if d := KCSDepth(th); d != 0 {
			t.Errorf("depth after return = %d", d)
		}
	})
	if depthInDB != 2 {
		t.Fatalf("KCS depth inside the leaf = %d, want 2 (web->php->db)", depthInDB)
	}
}

func TestFoldStubsCostsMore(t *testing.T) {
	// §7.4: folded stubs assume worst-case register liveness, so calls
	// cost more than with compiler-inlined stubs.
	measure := func(fold bool) sim.Time {
		w := newWorld(1)
		w.rt.FoldStubs = fold
		w.export(t, PolicyHigh, func(th *kernel.Thread, in *Args) *Args { return in })
		var avg sim.Time
		w.run(t, w.web, func(th *kernel.Thread) {
			ents, err := w.rt.MustImport(th, "/run/db.sock", []EntryDesc{{
				Name: "query", Sig: Signature{InRegs: 2, OutRegs: 1}, Policy: PolicyHigh,
			}})
			if err != nil {
				t.Error(err)
				return
			}
			args := &Args{Regs: []uint64{1, 2}}
			for i := 0; i < 16; i++ {
				ents[0].Call(th, args)
			}
			start := w.eng.Now()
			for i := 0; i < 128; i++ {
				ents[0].Call(th, args)
			}
			avg = (w.eng.Now() - start) / 128
		})
		return avg
	}
	inlined := measure(false)
	folded := measure(true)
	if folded <= inlined {
		t.Fatalf("folded stubs (%v) must cost more than inlined (%v)", folded, inlined)
	}
}

func TestTemplateCountScalesWithVariants(t *testing.T) {
	w := newWorld(1)
	w.m.Spawn(w.db, "init", nil, func(th *kernel.Thread) {
		w.rt.EnterProcessCode(th)
		dom := w.rt.DomDefault(th)
		id := func(th *kernel.Thread, in *Args) *Args { return in }
		// Register entries with varied signatures and policies; each
		// combination specializes its own template (§6.1.1).
		var descs []EntryDesc
		for in := 1; in <= 4; in++ {
			for _, pol := range []IsoProps{0, RegIntegrity, PolicyHigh} {
				descs = append(descs, EntryDesc{
					Name: "f", Fn: id,
					Sig:    Signature{InRegs: in, OutRegs: 1},
					Policy: pol,
				})
			}
		}
		eh, err := w.rt.EntryRegister(th, dom, descs)
		if err != nil {
			t.Error(err)
			return
		}
		req := make([]EntryDesc, len(descs))
		for i, d := range descs {
			req[i] = EntryDesc{Name: d.Name, Sig: d.Sig}
		}
		if _, _, err := w.rt.EntryRequest(th, eh, req); err != nil {
			t.Error(err)
		}
	})
	w.eng.Run()
	// 4 register counts × (policy variants that differ in proxy-visible
	// properties). RegIntegrity lives in stubs (not folded here), so 0
	// and RegIntegrity share templates: expect 4 × 2 distinct.
	if got := w.rt.TemplateCount(); got != 8 {
		t.Fatalf("template count = %d, want 8", got)
	}
}

func TestGrantRevokeCutsDirectAccess(t *testing.T) {
	w := newWorld(1)
	w.run(t, w.web, func(th *kernel.Thread) {
		pool := w.rt.DomCreate(th)
		buf, err := w.rt.DomMmap(th, pool, mem.PageSize, mem.FlagWrite)
		if err != nil {
			t.Error(err)
			return
		}
		self := w.rt.DomDefault(th)
		ro, _ := w.rt.DomCopy(th, pool, PermRead)
		g, err := w.rt.GrantCreate(th, self, ro)
		if err != nil {
			t.Error(err)
			return
		}
		arch := w.rt.Arch()
		if err := arch.Check(th.HW, w.rt.PT, buf, 8, codoms.AccessRead); err != nil {
			t.Errorf("read after grant: %v", err)
		}
		if err := w.rt.GrantRevoke(th, g); err != nil {
			t.Error(err)
		}
		if err := arch.Check(th.HW, w.rt.PT, buf, 8, codoms.AccessRead); err == nil {
			t.Error("read after revoke must fault")
		}
		if err := w.rt.GrantRevoke(th, g); err == nil {
			t.Error("double revoke must fail")
		}
	})
}

func TestEnterProcessCodeIdempotent(t *testing.T) {
	w := newWorld(1)
	w.run(t, w.web, func(th *kernel.Thread) {
		a, err := w.rt.EnterProcessCode(th)
		if err != nil {
			t.Error(err)
			return
		}
		b, err := w.rt.EnterProcessCode(th)
		if err != nil || a != b {
			t.Errorf("second enter moved the code page: %#x vs %#x (%v)", a, b, err)
		}
	})
}

func TestProxyCodePagesArePrivileged(t *testing.T) {
	w := newWorld(1)
	w.export(t, PolicyLow, func(th *kernel.Thread, in *Args) *Args { return in })
	w.run(t, w.web, func(th *kernel.Thread) {
		eh, _ := w.rt.Resolve(th, "/run/db.sock")
		_, ents, err := w.rt.EntryRequest(th, eh, []EntryDesc{{
			Name: "query", Sig: Signature{InRegs: 2, OutRegs: 1},
		}})
		if err != nil {
			t.Error(err)
			return
		}
		pi, ok := w.rt.PT.Lookup(ents[0].Addr())
		if !ok {
			t.Error("proxy entry not mapped")
			return
		}
		if !pi.Flags.Has(mem.FlagPrivCap) || !pi.Flags.Has(mem.FlagExec) {
			t.Errorf("proxy page flags = %b, want exec+privileged", pi.Flags)
		}
		if ents[0].Addr()%w.rt.M.Arch.EntryAlign != 0 {
			t.Error("proxy entry not aligned (P2)")
		}
	})
}

func TestDeadCalleeRejectedUpFront(t *testing.T) {
	w := newWorld(1)
	w.export(t, PolicyLow, func(th *kernel.Thread, in *Args) *Args { return in })
	var err error
	w.run(t, w.web, func(th *kernel.Thread) {
		ents, _ := w.rt.MustImport(th, "/run/db.sock", []EntryDesc{{
			Name: "query", Sig: Signature{InRegs: 2, OutRegs: 1},
		}})
		w.m.Kill(w.db)
		_, err = ents[0].Call(th, &Args{Regs: []uint64{1, 2}})
	})
	if err == nil {
		t.Fatal("calling into a dead process must fail")
	}
}
