package core

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Cross-process call time-outs (§5.4). The paper designs (but does not
// implement) time-outs that "split" a thread at the timed-out call site:
// the kernel duplicates the thread structure and KCS, unrolls the
// caller's KCS to the timing-out proxy, flags the error, and resumes the
// caller there; the callee side keeps running on the split-off thread
// and is deleted when it returns into the proxy.
//
// This implementation realizes those semantics. Because a Go call stack
// cannot be split after the fact, the potential split is materialized at
// call time: the callee half runs on a helper kernel thread in the
// callee's process from the start. The timing consequence — helper
// handoff costs that an in-place call would not pay — is therefore
// modeled pessimistically for CallWithTimeout only; plain Call is
// unaffected. No benchmark in the paper uses time-outs.

// splitResult carries the callee half's outcome back to the caller.
type splitResult struct {
	out      *Args
	err      error
	timedOut bool // caller gave up; helper must not wake anybody
}

// CallWithTimeout invokes the entry like Call but resumes the caller
// with an error if the callee does not finish within d. It requires the
// stack confidentiality+integrity property, since a split only works
// when the caller's stack is separate from the callee's (§5.4).
func (ie *ImportedEntry) CallWithTimeout(t *kernel.Thread, in *Args, d sim.Time) (*Args, error) {
	px := ie.proxy
	if !px.mp.proxy.Has(StackConfIntegrity) {
		return nil, fmt.Errorf("dipc: time-outs require stack confidentiality+integrity (§5.4)")
	}
	res := &splitResult{}
	caller := t
	// The callee half: a duplicate "kernel thread structure" carrying
	// the call through the proxy on its own stack.
	helper := px.rt.M.Spawn(px.callerProc, t.Name+"-split", nil, func(ht *kernel.Thread) {
		// The helper inherits the caller's domain context.
		ht.HW.SetIP(t.HW.IP())
		out, err := px.invoke(ht, in)
		res.out, res.err = out, err
		if !res.timedOut {
			caller.Wake(res, ht)
		}
		// Otherwise: the callee thread is deleted when it returns into
		// the proxy that produced the split — i.e. here.
	})
	_ = helper
	v, ok := t.BlockTimeout(nil, d)
	if !ok {
		// Timed out: flag the error and resume the caller at the
		// timing-out proxy. Charge the split bookkeeping (duplicating
		// the thread structure and KCS).
		res.timedOut = true
		t.Syscall(func() {
			t.Exec(t.Machine().P.ContextSwitch(), stats.BlockKernel)
		})
		return nil, fmt.Errorf("dipc: call to %s timed out after %v", ie.Name, d)
	}
	r := v.(*splitResult)
	return r.out, r.err
}
