package core

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/stats"
)

// Entry resolution (§6.2.1): the dIPC runtime's default resolver
// exchanges entry-point handles over UNIX named sockets. A process
// publishes an entry handle under a path; importers resolve the path the
// first time a caller stub touches the imported symbol (Fig. 3 step A),
// then create proxies with EntryRequest (step B). The socket exchange is
// charged as the two syscall round trips it costs; the handle transfer
// itself is an fd-passing operation.

// Publish exports an entry handle under a named-socket path.
func (rt *Runtime) Publish(t *kernel.Thread, path string, eh *EntryHandle) error {
	if eh == nil {
		return fmt.Errorf("dipc: publishing nil entry handle")
	}
	var err error
	t.Syscall(func() {
		t.Exec(t.Machine().P.SockKernel, stats.BlockKernel)
		if _, dup := rt.registry[path]; dup {
			err = fmt.Errorf("dipc: path %q already published", path)
			return
		}
		rt.registry[path] = eh
	})
	return err
}

// Resolve looks an entry handle up by its named-socket path, charging
// the connect + exchange round trip.
func (rt *Runtime) Resolve(t *kernel.Thread, path string) (*EntryHandle, error) {
	var eh *EntryHandle
	var err error
	// connect(2) on the named socket.
	t.Syscall(func() {
		t.Exec(t.Machine().P.SockKernel, stats.BlockKernel)
	})
	// handle exchange (sendmsg/recvmsg with SCM_RIGHTS).
	t.Syscall(func() {
		t.Exec(t.Machine().P.SockKernel+t.Machine().P.KernelCopy(64), stats.BlockKernel)
		var ok bool
		eh, ok = rt.registry[path]
		if !ok {
			err = fmt.Errorf("dipc: no entry handle published at %q", path)
		}
	})
	return eh, err
}

// MustImport is the convenience path applications use: resolve a
// published handle, request proxies with the caller-side descriptors and
// grant the calling process access to the proxy domain. It returns the
// imported entries ready to call.
func (rt *Runtime) MustImport(t *kernel.Thread, path string, descs []EntryDesc) ([]*ImportedEntry, error) {
	eh, err := rt.Resolve(t, path)
	if err != nil {
		return nil, err
	}
	domP, imports, err := rt.EntryRequest(t, eh, descs)
	if err != nil {
		return nil, err
	}
	self := rt.DomDefault(t)
	if _, err := rt.GrantCreate(t, self, domP); err != nil {
		return nil, err
	}
	return imports, nil
}
