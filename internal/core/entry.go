package core

import (
	"fmt"

	"repro/internal/codoms"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Signature describes an entry point's ABI: the register and stack
// footprint of its arguments and results (Table 2: "Number of
// input/output registers and stack size"). Caller and callee must agree
// exactly (security property P4).
type Signature struct {
	InRegs     int // argument registers
	OutRegs    int // result registers
	StackBytes int // in-stack argument bytes
	StackRet   int // in-stack result bytes
	CapArgs    int // capability arguments on the DCS
	CapRets    int // capability results on the DCS
	// LiveRegs is the compiler's register-liveness estimate at call
	// sites (0 means "unknown": stubs assume six live registers; folded
	// stubs assume the runtime's worst case).
	LiveRegs int
}

// matches implements the P4 signature equality check. LiveRegs is a
// compiler hint, not part of the ABI contract.
func (s Signature) matches(o Signature) bool {
	s.LiveRegs, o.LiveRegs = 0, 0
	return s == o
}

// Func is the body of an entry point: it runs on the calling thread
// after the proxy has switched domains. Simulated compute time is
// charged by the body itself.
type Func func(t *kernel.Thread, in *Args) *Args

// Args carries a call's arguments or results: register values, the
// in-stack payload size (for copy costing under stack confidentiality),
// capability arguments, and an opaque by-reference payload — dIPC passes
// arguments by reference, leaving copies to the programmer (§7.2).
type Args struct {
	Regs       []uint64
	StackBytes int
	Caps       []codoms.Capability
	Data       any
}

// EntryDesc describes one entry point being registered or requested.
type EntryDesc struct {
	Name   string
	Fn     Func // callee side only
	Sig    Signature
	Policy IsoProps
}

// entryImpl is a registered entry point: descriptor plus its address in
// the exporting domain's code pages.
type entryImpl struct {
	desc EntryDesc
	addr mem.Addr
}

// EntryHandle represents an array of public entry points of a domain
// (Table 2). It is created by the exporting process and passed to
// importers (as a file descriptor or through the name registry).
type EntryHandle struct {
	rt      *Runtime
	dom     DomainHandle
	proc    *kernel.Process
	entries []entryImpl
}

// NumEntries returns the number of entry points in the handle.
func (eh *EntryHandle) NumEntries() int { return len(eh.entries) }

// EntryRegister exports the given entry points from the domain of h,
// which requires owner permission. Entry code is placed on executable
// pages tagged with the domain, at addresses aligned to the CODOMs entry
// alignment so that call-permission crossings can only land on them (P2).
func (rt *Runtime) EntryRegister(t *kernel.Thread, h DomainHandle, descs []EntryDesc) (*EntryHandle, error) {
	if h.perm != PermOwner {
		return nil, errBadPerm("entry_register", PermOwner, h.perm)
	}
	if len(descs) == 0 {
		return nil, fmt.Errorf("dipc: entry_register with no entries")
	}
	for i, d := range descs {
		if d.Fn == nil {
			return nil, fmt.Errorf("dipc: entry %d (%s) has no implementation", i, d.Name)
		}
	}
	proc := t.Process()
	if proc.VA == nil {
		return nil, fmt.Errorf("dipc: process %s is not dIPC-enabled", proc.Name)
	}
	var eh *EntryHandle
	var err error
	t.Syscall(func() {
		perPage := int(mem.PageSize / rt.M.Arch.EntryAlign)
		npages := (len(descs) + perPage - 1) / perPage
		t.Exec(t.Machine().P.FutexWake+t.Machine().P.CacheLineTouch*sim.Time(len(descs)), stats.BlockKernel)
		var base mem.Addr
		base, err = rt.mapCodePages(proc.VA, npages, h.tag, false)
		if err != nil {
			return
		}
		eh = &EntryHandle{rt: rt, dom: h, proc: proc}
		for i, d := range descs {
			eh.entries = append(eh.entries, entryImpl{
				desc: d,
				addr: base + mem.Addr(i)*rt.M.Arch.EntryAlign,
			})
		}
	})
	return eh, err
}

// ImportedEntry is a caller-side resolved entry point: calling it runs
// the run-time-generated proxy, which crosses into the exporting
// process and back (Fig. 3 steps 1–3).
type ImportedEntry struct {
	Name  string
	proxy *Proxy
}

// Addr returns the proxy's entry address (what the caller's PLT-like
// slot points at after resolution).
func (ie *ImportedEntry) Addr() mem.Addr { return ie.proxy.addr }

// EntryRequest imports the entry points of eh into the calling process:
// for every entry it checks that the requested signature matches the
// registered one (P4), creates a specialized trusted proxy, and returns
// a call-permission handle to the fresh proxy domain plus the resolved
// entries. The caller must still GrantCreate its own domain access to
// the proxy domain before calling (P2).
//
// The effective isolation policy of each entry is the union of the
// policies requested by the two sides, resolved per §5.2.3.
func (rt *Runtime) EntryRequest(t *kernel.Thread, eh *EntryHandle, descs []EntryDesc) (DomainHandle, []*ImportedEntry, error) {
	if eh == nil || len(descs) != len(eh.entries) {
		return DomainHandle{}, nil, fmt.Errorf("dipc: entry_request count mismatch")
	}
	for i, d := range descs {
		if !d.Sig.matches(eh.entries[i].desc.Sig) {
			return DomainHandle{}, nil, fmt.Errorf(
				"dipc: entry %d (%s): signature mismatch (caller %+v, callee %+v) — P4",
				i, eh.entries[i].desc.Name, d.Sig, eh.entries[i].desc.Sig)
		}
	}
	callerProc := t.Process()
	if callerProc.VA == nil {
		return DomainHandle{}, nil, fmt.Errorf("dipc: process %s is not dIPC-enabled", callerProc.Name)
	}
	var domP DomainHandle
	var imports []*ImportedEntry
	var err error
	t.Syscall(func() {
		p := t.Machine().P
		// Create the proxy domain with access to both sides.
		pd := rt.M.Arch.NewDomain()
		if err = rt.M.Arch.Grant(pd.Tag, callerProc.DefaultTag, codoms.PermWrite); err != nil {
			return
		}
		if err = rt.M.Arch.Grant(pd.Tag, eh.dom.tag, codoms.PermWrite); err != nil {
			return
		}
		if eh.proc.DefaultTag != eh.dom.tag {
			// The callee function may live in a non-default domain of
			// its process; the proxy also needs the process's default
			// domain for stack and TLS work.
			if err = rt.M.Arch.Grant(pd.Tag, eh.proc.DefaultTag, codoms.PermWrite); err != nil {
				return
			}
		}
		// Each proxy occupies two aligned slots: entry and proxy_ret.
		perPage := int(mem.PageSize / rt.M.Arch.EntryAlign)
		npages := (2*len(descs) + perPage - 1) / perPage
		var base mem.Addr
		base, err = rt.mapCodePages(rt.proxyVA, npages, pd.Tag, true)
		if err != nil {
			return
		}
		cross := eh.proc != callerProc
		for i := range descs {
			mp := merge(descs[i].Policy, eh.entries[i].desc.Policy)
			tmpl := rt.template(eh.entries[i].desc.Sig, mp, cross)
			// Run-time specialization: copy the template into place
			// and relocate it (§6.1.1).
			t.Exec(p.Copy(tmpl.CodeBytes)+p.CacheLineTouch*sim.Time(tmpl.Relocs), stats.BlockKernel)
			px := &Proxy{
				rt:         rt,
				tmpl:       tmpl,
				entry:      eh.entries[i],
				mp:         mp,
				sig:        eh.entries[i].desc.Sig,
				domTag:     pd.Tag,
				addr:       base + mem.Addr(2*i)*rt.M.Arch.EntryAlign,
				retAddr:    base + mem.Addr(2*i+1)*rt.M.Arch.EntryAlign,
				callerProc: callerProc,
				calleeProc: eh.proc,
				cross:      cross,
			}
			px.compile()
			imports = append(imports, &ImportedEntry{Name: eh.entries[i].desc.Name, proxy: px})
		}
		domP = DomainHandle{rt: rt, tag: pd.Tag, perm: PermCall}
	})
	if err != nil {
		return DomainHandle{}, nil, err
	}
	return domP, imports, nil
}
