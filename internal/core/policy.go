package core

import "strings"

// IsoProps is the set of isolation properties requested for one side of
// an entry point (§5.2.3). Each property protects one sensitive resource
// for integrity (trusting the peer to follow the ABI) and/or
// confidentiality (trusting the peer with private data).
type IsoProps uint8

// Isolation properties.
const (
	// RegIntegrity saves live registers around the call (user stub).
	RegIntegrity IsoProps = 1 << iota
	// RegConfidentiality zeroes non-argument registers before the call
	// and non-result registers after it (user stub).
	RegConfidentiality
	// StackIntegrity creates capabilities for the in-stack arguments
	// and the unused stack area around the call (user stub).
	StackIntegrity
	// StackConfIntegrity splits data stacks between the domains,
	// copying arguments and results by signature (trusted proxy).
	StackConfIntegrity
	// DCSIntegrity raises the DCS base register to hide non-argument
	// capability entries (trusted proxy).
	DCSIntegrity
	// DCSConfIntegrity gives the callee a separate capability stack
	// (trusted proxy; callee side only).
	DCSConfIntegrity
)

// Has reports whether all properties in mask are present.
func (p IsoProps) Has(mask IsoProps) bool { return p&mask == mask }

// String lists the property names.
func (p IsoProps) String() string {
	if p == 0 {
		return "none"
	}
	names := []struct {
		bit  IsoProps
		name string
	}{
		{RegIntegrity, "reg-integ"},
		{RegConfidentiality, "reg-conf"},
		{StackIntegrity, "stack-integ"},
		{StackConfIntegrity, "stack-conf+integ"},
		{DCSIntegrity, "dcs-integ"},
		{DCSConfIntegrity, "dcs-conf+integ"},
	}
	var out []string
	for _, n := range names {
		if p.Has(n.bit) {
			out = append(out, n.name)
		}
	}
	return strings.Join(out, "|")
}

// Policy presets used throughout the evaluation (Fig. 5).
var (
	// PolicyLow is the minimal non-trivial policy: the proxy's own
	// control-flow guarantees (P2/P3) with no extra state isolation.
	PolicyLow IsoProps = 0
	// PolicyHigh is equivalent to full mutual process isolation.
	PolicyHigh = RegIntegrity | RegConfidentiality | StackConfIntegrity |
		DCSIntegrity | DCSConfIntegrity
)

// mergedPolicy resolves the effective properties of a call from the
// caller-requested and callee-registered sides, per §5.2.3:
//
//   - stack and DCS confidentiality activate when either side asks;
//   - integrity-only properties activate only when the caller asks;
//   - register and stack-integrity stubs run on the side that asked.
type mergedPolicy struct {
	callerStub IsoProps // properties implemented in the caller's stub
	calleeStub IsoProps // properties implemented in the callee's stub
	proxy      IsoProps // properties implemented in the trusted proxy
}

func merge(caller, callee IsoProps) mergedPolicy {
	var mp mergedPolicy
	// User-stub properties: each side gets what it requested.
	mp.callerStub = caller & (RegIntegrity | RegConfidentiality | StackIntegrity)
	mp.calleeStub = callee & (RegIntegrity | RegConfidentiality | StackIntegrity)
	// Proxy properties.
	if (caller | callee).Has(StackConfIntegrity) {
		mp.proxy |= StackConfIntegrity
	}
	if caller.Has(DCSIntegrity) {
		mp.proxy |= DCSIntegrity
	}
	if callee.Has(DCSConfIntegrity) {
		mp.proxy |= DCSConfIntegrity
	}
	return mp
}
