package core

import (
	"fmt"

	"repro/internal/kernel"
)

// Asynchronous calls (§5.4): one-sided communication and asynchronicity
// that is part of the application's interface semantics are supported
// "by creating additional threads" — dIPC does not bake asynchrony into
// the mechanism. Future is the handle for such a call.
type Future struct {
	done bool
	out  *Args
	err  error
	q    kernel.TQueue
}

// Done reports whether the call has completed.
func (f *Future) Done() bool { return f.done }

// Wait blocks the calling thread until the call completes and returns
// its results.
func (f *Future) Wait(t *kernel.Thread) (*Args, error) {
	if !f.done {
		f.q.BlockOn(t)
	}
	return f.out, f.err
}

// CallAsync invokes the entry point on a fresh thread of the calling
// process and returns immediately with a Future. The spawned thread is
// a plain application thread — it pays the normal proxy path, and its
// concurrency is real (the whole point is that dIPC only creates
// threads when the application actually wants parallelism, §2.3).
func (ie *ImportedEntry) CallAsync(t *kernel.Thread, in *Args) *Future {
	f := &Future{}
	ip := t.HW.IP()
	t.Machine().Spawn(t.Process(), fmt.Sprintf("%s-async", ie.Name), nil,
		func(ht *kernel.Thread) {
			ht.HW.SetIP(ip) // same code domain as the spawner
			f.out, f.err = ie.proxy.invoke(ht, in)
			f.done = true
			f.q.WakeAll(nil, ht)
		})
	return f
}
