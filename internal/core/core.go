// Package core implements dIPC — direct inter-process communication —
// the primary contribution of the paper. It lets a thread in one process
// call a function exported by another process as a plain synchronous
// function call, with no kernel involvement on the fast path: memory
// isolation is delegated to the CODOMs architecture model, and a
// run-time-generated trusted proxy bridges the call (Fig. 3).
//
// The package exposes the Table-2 object API:
//
//   - isolation domains   (DomDefault, DomCreate, DomCopy, DomMmap, DomRemap)
//   - domain grants       (GrantCreate, GrantRevoke)
//   - entry points        (EntryRegister, EntryRequest)
//
// plus the runtime machinery behind them: proxy template specialization
// (§6.1.1), the process-tracking hot/warm/cold paths (§6.1.2), the kernel
// control stack with crash unwinding (§5.2.1), thread-split timeouts
// (§5.4) and the global virtual address space (§6.1.3).
package core

import (
	"fmt"

	"repro/internal/codoms"
	"repro/internal/kernel"
	"repro/internal/mem"
)

// Runtime is one dIPC instance: a global virtual address space with a
// shared page table, hosting any number of dIPC-enabled processes.
type Runtime struct {
	M  *kernel.Machine
	PT *mem.PageTable

	templates map[templateKey]*ProxyTemplate
	registry  map[string]*EntryHandle // named-socket entry resolution
	proxyVA   *mem.Suballoc
	codeBases map[*kernel.Process]mem.Addr

	// FoldStubs folds the caller/callee isolation stubs into the proxy
	// assuming worst-case register liveness, matching the paper's
	// macro-benchmark configuration, which lacked compiler backend
	// support (§7.4). The loader clears it per-entry when compiler
	// annotations provide stubs.
	FoldStubs bool

	// WorstCaseLiveRegs is the register count assumed live when stubs
	// are folded ("all non-volatile registers are considered live").
	WorstCaseLiveRegs int

	// crossCalls counts proxied cross-domain calls (§7.5 sensitivity).
	crossCalls uint64
}

// NewRuntime creates a dIPC runtime on machine m with a fresh shared
// page table.
func NewRuntime(m *kernel.Machine) *Runtime {
	rt := &Runtime{
		M:                 m,
		PT:                mem.NewPageTable(),
		templates:         make(map[templateKey]*ProxyTemplate),
		registry:          make(map[string]*EntryHandle),
		WorstCaseLiveRegs: 14,
	}
	rt.proxyVA = mem.NewSuballoc(m.Global, "dipc-proxies")
	return rt
}

// NewProcess creates a dIPC-enabled process inside this runtime's global
// virtual address space.
func (rt *Runtime) NewProcess(name string) *kernel.Process {
	return rt.M.NewDIPCProcess(name, rt.PT)
}

// CrossCalls returns the number of proxied calls performed so far.
func (rt *Runtime) CrossCalls() uint64 { return rt.crossCalls }

// EnterProcessCode places the thread's instruction pointer on a code
// page belonging to the calling process's default domain, modeling the
// application code the thread executes. Each thread must do this once
// before issuing dIPC calls — the CODOMs checks take the subject domain
// from the instruction pointer's page tag.
func (rt *Runtime) EnterProcessCode(t *kernel.Thread) (mem.Addr, error) {
	proc := t.Process()
	if base, ok := rt.codeBases[proc]; ok {
		t.HW.SetIP(base)
		return base, nil
	}
	if proc.VA == nil {
		return 0, fmt.Errorf("dipc: process %s is not dIPC-enabled", proc.Name)
	}
	base, err := rt.mapCodePages(proc.VA, 1, proc.DefaultTag, false)
	if err != nil {
		return 0, err
	}
	if rt.codeBases == nil {
		rt.codeBases = make(map[*kernel.Process]mem.Addr)
	}
	rt.codeBases[proc] = base
	t.HW.SetIP(base)
	return base, nil
}

// Arch returns the CODOMs system configuration.
func (rt *Runtime) Arch() *codoms.System { return rt.M.Arch }

// errBadPerm builds the permission-failure error used across the API.
func errBadPerm(op string, need, have Perm) error {
	return fmt.Errorf("dipc: %s requires %v permission, handle has %v", op, need, have)
}

// mapCodePages maps n executable pages for domain tag out of the given
// process's share of the global VA space, optionally privileged (proxy
// code carries the privileged capability bit).
func (rt *Runtime) mapCodePages(va *mem.Suballoc, npages int, tag codoms.Tag, privileged bool) (mem.Addr, error) {
	base, err := va.Alloc(npages * mem.PageSize)
	if err != nil {
		return 0, err
	}
	flags := mem.FlagExec
	if privileged {
		flags |= mem.FlagPrivCap
	}
	if err := rt.PT.Map(base, npages, flags, tag); err != nil {
		return 0, err
	}
	return base, nil
}
