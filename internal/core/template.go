package core

// ProxyTemplate is one pre-built proxy code variant. The paper's
// prototype expands a single parametrized "master template" into ~12K
// concrete templates at build time (~600 B each, §6.1.1), keyed by entry
// signature and isolation properties; entry_request then copies the
// matching template and patches it by symbol relocation.
//
// The simulation mirrors that: templates are memoized per key, their
// size scales with the features they include (that size drives the copy
// cost at proxy-generation time and the instruction-cache footprint),
// and a relocation count drives the patch cost.
type ProxyTemplate struct {
	Key       templateKey
	CodeBytes int // template size (paper average: ~600 B)
	Relocs    int // relocation slots patched at generation time

	// maxDepth is the deepest kernel-control-stack chain any proxy of
	// this template has been part of; threads entering such a chain
	// pre-size their KCS to it so deep call stacks grow it once.
	maxDepth int
}

// templateKey identifies a template variant. Register counts and stack
// classes are bucketed exactly as a build-time expansion would have to.
type templateKey struct {
	inRegs     int
	outRegs    int
	stackClass int // 0: none, 1: <=64B, 2: <=512B, 3: larger
	capArgs    int
	proxyProps IsoProps // properties implemented inside the proxy
	stubProps  IsoProps // folded stub properties, if any
	cross      bool
}

// stackClass buckets a stack size the way the master template does.
func stackClass(bytes int) int {
	switch {
	case bytes == 0:
		return 0
	case bytes <= 64:
		return 1
	case bytes <= 512:
		return 2
	default:
		return 3
	}
}

// template returns (building if needed) the template for the given
// signature and merged policy.
func (rt *Runtime) template(sig Signature, mp mergedPolicy, cross bool) *ProxyTemplate {
	key := templateKey{
		inRegs:     sig.InRegs,
		outRegs:    sig.OutRegs,
		stackClass: stackClass(sig.StackBytes + sig.StackRet),
		capArgs:    sig.CapArgs,
		proxyProps: mp.proxy,
		cross:      cross,
	}
	if rt.FoldStubs {
		key.stubProps = mp.callerStub | mp.calleeStub
	}
	if tmpl, ok := rt.templates[key]; ok {
		return tmpl
	}
	tmpl := &ProxyTemplate{Key: key, CodeBytes: 180, Relocs: 4}
	// Feature-dependent code size: each property adds instructions.
	if cross {
		tmpl.CodeBytes += 160 // track_process_{call,ret} + TLS switch
		tmpl.Relocs += 3      // target process tag, TLS slots
	}
	if mp.proxy.Has(StackConfIntegrity) {
		tmpl.CodeBytes += 120
		tmpl.Relocs += 2
	}
	if mp.proxy.Has(DCSIntegrity) {
		tmpl.CodeBytes += 40
	}
	if mp.proxy.Has(DCSConfIntegrity) {
		tmpl.CodeBytes += 80
		tmpl.Relocs++
	}
	if rt.FoldStubs {
		// Folded stubs inline the register save/zero sequences.
		if key.stubProps.Has(RegIntegrity) {
			tmpl.CodeBytes += 8 * rt.WorstCaseLiveRegs
		}
		if key.stubProps.Has(RegConfidentiality) {
			tmpl.CodeBytes += 4 * (16 - sig.InRegs + 16 - sig.OutRegs)
		}
		if key.stubProps.Has(StackIntegrity) {
			tmpl.CodeBytes += 48
		}
	}
	tmpl.CodeBytes += 16 * sig.InRegs / 4 // argument shuffling
	rt.templates[key] = tmpl
	return tmpl
}

// TemplateCount returns how many distinct templates have been
// instantiated so far (the paper's build-time expansion yields ~12K; the
// simulation materializes them lazily).
func (rt *Runtime) TemplateCount() int { return len(rt.templates) }
