package mem

// TLB is a small fully-associative translation cache with FIFO
// replacement. The simulator uses it to account translation behaviour
// around page-table switches: conventional process switches flush the
// TLB (the paper's Fig. 2 block 6 includes the refill cost), whereas
// dIPC's shared page table never needs a flush.
type TLB struct {
	capacity int
	entries  map[Addr]PageInfo
	order    []Addr // FIFO eviction order
	hits     uint64
	misses   uint64
	flushes  uint64
}

// NewTLB returns a TLB with the given number of entries.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		capacity = 64
	}
	return &TLB{
		capacity: capacity,
		entries:  make(map[Addr]PageInfo, capacity),
	}
}

// vpn returns the virtual page number key for an address.
func vpn(va Addr) Addr { return va >> PageShift }

// Lookup translates va through the TLB, falling back to a walk of pt on
// a miss and installing the translation. The boolean reports a hit.
func (t *TLB) Lookup(pt *PageTable, va Addr) (PageInfo, bool) {
	key := vpn(va)
	if pi, ok := t.entries[key]; ok {
		t.hits++
		return pi, true
	}
	t.misses++
	pi, ok := pt.Lookup(va)
	if ok {
		t.insert(key, pi)
	}
	return pi, false
}

func (t *TLB) insert(key Addr, pi PageInfo) {
	if _, exists := t.entries[key]; !exists && len(t.entries) >= t.capacity {
		victim := t.order[0]
		t.order = t.order[1:]
		delete(t.entries, victim)
	}
	if _, exists := t.entries[key]; !exists {
		t.order = append(t.order, key)
	}
	t.entries[key] = pi
}

// Invalidate drops the translation for va (e.g. after Retag or Unmap).
func (t *TLB) Invalidate(va Addr) {
	key := vpn(va)
	if _, ok := t.entries[key]; !ok {
		return
	}
	delete(t.entries, key)
	for i, k := range t.order {
		if k == key {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// Flush empties the TLB (page-table switch on a conventional CPU).
func (t *TLB) Flush() {
	t.entries = make(map[Addr]PageInfo, t.capacity)
	t.order = t.order[:0]
	t.flushes++
}

// Stats returns (hits, misses, flushes).
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}

// Len returns the number of cached translations.
func (t *TLB) Len() int { return len(t.entries) }
