package mem

// TLB is a small translation cache with global-FIFO replacement. The
// simulator uses it to account translation behaviour around page-table
// switches: conventional process switches flush the TLB (the paper's
// Fig. 2 block 6 includes the refill cost), whereas dIPC's shared page
// table never needs a flush.
//
// Storage is a fixed power-of-two set-associative array: the VPN's low
// bits select a set of tlbWays slots and a conflict spills linearly into
// the following sets, so a lookup is a handful of adjacent probes with
// no map hashing and no per-miss map growth. The array is sized at twice
// the TLB's capacity, which bounds the spill chains. Replacement stays
// global FIFO over a fixed ring of resident VPNs — the hit/miss/eviction
// sequence is exactly that of a fully-associative FIFO TLB of the same
// capacity (the previous map-based implementation), which the property
// tests in tlb_test.go pin.
type TLB struct {
	capacity int
	slotMask int        // len(slots)-1; power of two
	slots    []tlbEntry // set-associative storage, tlbWays per set
	fifo     []Addr     // ring of resident VPNs, oldest at head
	head     int
	count    int
	hits     uint64
	misses   uint64
	flushes  uint64
}

// tlbWays is the associativity: the number of slots per set probed
// before spilling into the next set.
const tlbWays = 4

// tlbEntry is one slot of the storage array.
type tlbEntry struct {
	key  Addr // VPN
	pi   PageInfo
	used bool
}

// NewTLB returns a TLB with the given number of entries.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		capacity = 64
	}
	sets := 1
	for sets*tlbWays < 2*capacity {
		sets <<= 1
	}
	return &TLB{
		capacity: capacity,
		slotMask: sets*tlbWays - 1,
		slots:    make([]tlbEntry, sets*tlbWays),
		fifo:     make([]Addr, capacity),
	}
}

// vpn returns the virtual page number key for an address.
func vpn(va Addr) Addr { return va >> PageShift }

// home returns the first slot of the set the key maps to.
//
//dipcvet:noalloc
func (t *TLB) home(key Addr) int {
	return (int(key) * tlbWays) & t.slotMask
}

// find probes the key's set and its spill chain, returning the slot
// index or -1. The chain always terminates at an unused slot: the array
// holds at most capacity entries in 2×capacity slots.
//
//dipcvet:noalloc
func (t *TLB) find(key Addr) int {
	i := t.home(key)
	for {
		s := &t.slots[i]
		if !s.used {
			return -1
		}
		if s.key == key {
			return i
		}
		i = (i + 1) & t.slotMask
	}
}

// Lookup translates va through the TLB, falling back to a walk of pt on
// a miss and installing the translation. The boolean reports a hit.
//
//dipcvet:noalloc
func (t *TLB) Lookup(pt *PageTable, va Addr) (PageInfo, bool) {
	key := vpn(va)
	if i := t.find(key); i >= 0 {
		t.hits++
		return t.slots[i].pi, true
	}
	t.misses++
	pi, ok := pt.Lookup(va)
	if ok {
		t.insert(key, pi)
	}
	return pi, false
}

//dipcvet:noalloc
func (t *TLB) insert(key Addr, pi PageInfo) {
	if i := t.find(key); i >= 0 {
		// Refresh in place; FIFO position is unchanged, as for the map.
		t.slots[i].pi = pi
		return
	}
	if t.count >= t.capacity {
		victim := t.fifo[t.head]
		t.head = (t.head + 1) % t.capacity
		t.count--
		if i := t.find(victim); i >= 0 {
			t.deleteSlot(i)
		}
	}
	t.fifo[(t.head+t.count)%t.capacity] = key
	t.count++
	i := t.home(key)
	for t.slots[i].used {
		i = (i + 1) & t.slotMask
	}
	t.slots[i] = tlbEntry{key: key, pi: pi, used: true}
}

// deleteSlot empties slot i and backward-shifts the spill chain behind
// it so that find's unused-slot termination stays correct: a follower is
// moved into the hole unless its home set lies cyclically after the
// hole (in which case the hole does not break its probe path).
//
//dipcvet:noalloc
func (t *TLB) deleteSlot(i int) {
	j := i
	for {
		t.slots[i] = tlbEntry{}
		for {
			j = (j + 1) & t.slotMask
			if !t.slots[j].used {
				return
			}
			home := t.home(t.slots[j].key)
			if (j-home)&t.slotMask >= (j-i)&t.slotMask {
				break
			}
		}
		t.slots[i] = t.slots[j]
		i = j
	}
}

// Invalidate drops the translation for va (e.g. after Retag or Unmap).
func (t *TLB) Invalidate(va Addr) {
	key := vpn(va)
	i := t.find(key)
	if i < 0 {
		return
	}
	t.deleteSlot(i)
	for j := 0; j < t.count; j++ {
		if t.fifo[(t.head+j)%t.capacity] == key {
			for k := j; k < t.count-1; k++ {
				t.fifo[(t.head+k)%t.capacity] = t.fifo[(t.head+k+1)%t.capacity]
			}
			t.count--
			break
		}
	}
}

// Flush empties the TLB (page-table switch on a conventional CPU).
func (t *TLB) Flush() {
	clear(t.slots)
	t.head = 0
	t.count = 0
	t.flushes++
}

// Stats returns (hits, misses, flushes).
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}

// Len returns the number of cached translations.
func (t *TLB) Len() int { return t.count }
