package mem

import (
	"math/rand"
	"testing"
)

// refTLB is the previous map-based fully-associative FIFO implementation,
// kept verbatim as the behavioural reference for the set-associative
// array: same capacity, same eviction policy, same counters.
type refTLB struct {
	capacity int
	entries  map[Addr]PageInfo
	order    []Addr
	hits     uint64
	misses   uint64
	flushes  uint64
}

func newRefTLB(capacity int) *refTLB {
	if capacity <= 0 {
		capacity = 64
	}
	return &refTLB{capacity: capacity, entries: make(map[Addr]PageInfo, capacity)}
}

func (t *refTLB) Lookup(pt *PageTable, va Addr) (PageInfo, bool) {
	key := vpn(va)
	if pi, ok := t.entries[key]; ok {
		t.hits++
		return pi, true
	}
	t.misses++
	pi, ok := pt.Lookup(va)
	if ok {
		t.insert(key, pi)
	}
	return pi, false
}

func (t *refTLB) insert(key Addr, pi PageInfo) {
	if _, exists := t.entries[key]; !exists && len(t.entries) >= t.capacity {
		victim := t.order[0]
		t.order = t.order[1:]
		delete(t.entries, victim)
	}
	if _, exists := t.entries[key]; !exists {
		t.order = append(t.order, key)
	}
	t.entries[key] = pi
}

func (t *refTLB) Invalidate(va Addr) {
	key := vpn(va)
	if _, ok := t.entries[key]; !ok {
		return
	}
	delete(t.entries, key)
	for i, k := range t.order {
		if k == key {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

func (t *refTLB) Flush() {
	t.entries = make(map[Addr]PageInfo, t.capacity)
	t.order = t.order[:0]
	t.flushes++
}

// tlbTable maps n consecutive pages so lookups have something to hit.
func tlbTable(t *testing.T, n int) *PageTable {
	t.Helper()
	pt := NewPageTable()
	if err := pt.Map(0, n, FlagWrite, 1); err != nil {
		t.Fatal(err)
	}
	return pt
}

// TestTLBEvictionOrder fills the TLB past capacity and checks the
// oldest translations left in insertion order.
func TestTLBEvictionOrder(t *testing.T) {
	pt := tlbTable(t, 8)
	tlb := NewTLB(3)
	for i := 0; i < 5; i++ { // pages 0..4; 0 and 1 must be evicted
		tlb.Lookup(pt, Addr(i)*PageSize)
	}
	if tlb.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tlb.Len())
	}
	for i, wantHit := range []bool{false, false, true, true, true} {
		before, _, _ := tlb.Stats()
		_, hit := tlb.Lookup(pt, Addr(i)*PageSize)
		if hit != wantHit {
			t.Errorf("page %d: hit = %v, want %v", i, hit, wantHit)
		}
		// Re-probing page 0/1 refills and evicts again; rebuild state.
		_ = before
		if !wantHit {
			tlb.Flush()
			for j := 0; j < 5; j++ {
				tlb.Lookup(pt, Addr(j)*PageSize)
			}
		}
	}
}

// TestTLBFIFOWraparound drives the eviction ring around its buffer
// several times and checks residency stays exactly the last `capacity`
// distinct pages.
func TestTLBFIFOWraparound(t *testing.T) {
	const capacity, pages = 4, 64
	pt := tlbTable(t, pages)
	tlb := NewTLB(capacity)
	for round := 0; round < 3; round++ {
		for i := 0; i < pages; i++ {
			tlb.Lookup(pt, Addr(i)*PageSize)
		}
		if tlb.Len() != capacity {
			t.Fatalf("round %d: Len = %d, want %d", round, tlb.Len(), capacity)
		}
		// The last `capacity` pages are resident, everything older is not.
		hits, _, _ := tlb.Stats()
		for i := pages - capacity; i < pages; i++ {
			if _, hit := tlb.Lookup(pt, Addr(i)*PageSize); !hit {
				t.Fatalf("round %d: recent page %d missed", round, i)
			}
		}
		afterHits, _, _ := tlb.Stats()
		if afterHits-hits != capacity {
			t.Fatalf("round %d: %d hits on the resident window, want %d", round, afterHits-hits, capacity)
		}
	}
}

// TestTLBCapacityOne pins the degenerate single-entry TLB: every
// distinct page evicts the previous one, repeats hit.
func TestTLBCapacityOne(t *testing.T) {
	pt := tlbTable(t, 4)
	tlb := NewTLB(1)
	if _, hit := tlb.Lookup(pt, 0); hit {
		t.Fatal("cold lookup hit")
	}
	if _, hit := tlb.Lookup(pt, 8); !hit { // same page, different offset
		t.Fatal("same-page lookup missed")
	}
	if _, hit := tlb.Lookup(pt, PageSize); hit {
		t.Fatal("second page hit a single-entry TLB")
	}
	if _, hit := tlb.Lookup(pt, 0); hit {
		t.Fatal("evicted page still resident")
	}
	if tlb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tlb.Len())
	}
	tlb.Invalidate(0)
	if tlb.Len() != 0 {
		t.Fatalf("Len after invalidate = %d, want 0", tlb.Len())
	}
	if _, hit := tlb.Lookup(pt, PageSize); hit {
		t.Fatal("hit after invalidate emptied the TLB")
	}
}

// TestTLBMatchesMapReference is the differential property test: on
// random traces of lookups, invalidates and flushes, the set-associative
// TLB must report the same hit/miss result and the same counters as the
// map-based fully-associative FIFO reference, step for step.
func TestTLBMatchesMapReference(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 4, 7, 16, 64} {
		rng := rand.New(rand.NewSource(int64(0xD1BC + capacity)))
		const pages = 96
		pt := tlbTable(t, pages)
		got := NewTLB(capacity)
		want := newRefTLB(capacity)
		for step := 0; step < 20000; step++ {
			switch op := rng.Intn(100); {
			case op < 88: // lookup; skew toward a hot subset so hits occur
				page := rng.Intn(pages)
				if rng.Intn(2) == 0 {
					page = rng.Intn(2 * capacity)
				}
				va := Addr(page)*PageSize + Addr(rng.Intn(PageSize))
				gpi, ghit := got.Lookup(pt, va)
				wpi, whit := want.Lookup(pt, va)
				if ghit != whit || gpi != wpi {
					t.Fatalf("cap %d step %d: Lookup(%#x) = (%+v,%v), reference (%+v,%v)",
						capacity, step, uint64(va), gpi, ghit, wpi, whit)
				}
			case op < 97:
				va := Addr(rng.Intn(pages)) * PageSize
				got.Invalidate(va)
				want.Invalidate(va)
			default:
				got.Flush()
				want.Flush()
			}
			gh, gm, gf := got.Stats()
			if gh != want.hits || gm != want.misses || gf != want.flushes {
				t.Fatalf("cap %d step %d: stats (%d,%d,%d), reference (%d,%d,%d)",
					capacity, step, gh, gm, gf, want.hits, want.misses, want.flushes)
			}
			if got.Len() != len(want.entries) {
				t.Fatalf("cap %d step %d: Len %d, reference %d", capacity, step, got.Len(), len(want.entries))
			}
		}
	}
}
