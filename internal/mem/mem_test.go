package mem

import (
	"testing"
	"testing/quick"
)

func TestMapLookupUnmap(t *testing.T) {
	pt := NewPageTable()
	va := Addr(0x40000000)
	if err := pt.Map(va, 4, FlagWrite|FlagExec, Tag(7)); err != nil {
		t.Fatal(err)
	}
	if pt.Mapped() != 4 {
		t.Fatalf("Mapped = %d, want 4", pt.Mapped())
	}
	pi, ok := pt.Lookup(va + 3*PageSize)
	if !ok || pi.Tag != 7 || !pi.Flags.Has(FlagWrite) {
		t.Fatalf("Lookup = %+v, %v", pi, ok)
	}
	if _, ok := pt.Lookup(va + 4*PageSize); ok {
		t.Fatal("page beyond mapping should not translate")
	}
	pt.Unmap(va, 4)
	if pt.Mapped() != 0 {
		t.Fatalf("Mapped after unmap = %d", pt.Mapped())
	}
	if _, ok := pt.Lookup(va); ok {
		t.Fatal("unmapped page still translates")
	}
}

func TestMapRejectsUnaligned(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(Addr(123), 1, 0, NilTag); err == nil {
		t.Fatal("unaligned map must fail")
	}
}

func TestMapRejectsDoubleMap(t *testing.T) {
	pt := NewPageTable()
	va := Addr(0x1000)
	if err := pt.Map(va, 1, 0, NilTag); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(va, 1, 0, NilTag); err == nil {
		t.Fatal("double map must fail")
	}
}

func TestDistinctFramesPerPage(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0x1000, 8, 0, NilTag); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		pi, _ := pt.Lookup(Addr(0x1000 + i*PageSize))
		if seen[pi.Frame] {
			t.Fatalf("frame %d reused", pi.Frame)
		}
		seen[pi.Frame] = true
	}
}

func TestMapSharedAliasesFrames(t *testing.T) {
	src := NewPageTable()
	if err := src.Map(0x10000, 2, FlagExec, Tag(1)); err != nil {
		t.Fatal(err)
	}
	dst := NewPageTable()
	if err := dst.MapShared(0x20000, 2, FlagExec, Tag(2), src, 0x10000); err != nil {
		t.Fatal(err)
	}
	spi, _ := src.Lookup(0x10000)
	dpi, _ := dst.Lookup(0x20000)
	if spi.Frame != dpi.Frame {
		t.Fatalf("shared mapping frames differ: %d vs %d", spi.Frame, dpi.Frame)
	}
	if dpi.Tag != 2 {
		t.Fatalf("shared mapping tag = %d, want 2 (virtual copy keeps its own domain)", dpi.Tag)
	}
	if err := dst.MapShared(0x30000, 1, 0, NilTag, src, 0x90000); err == nil {
		t.Fatal("MapShared from unmapped source must fail")
	}
}

func TestRetag(t *testing.T) {
	pt := NewPageTable()
	va := Addr(0x5000)
	if err := pt.Map(va, 3, FlagWrite, Tag(1)); err != nil {
		t.Fatal(err)
	}
	if err := pt.Retag(va, 3, Tag(1), Tag(9)); err != nil {
		t.Fatal(err)
	}
	pi, _ := pt.Lookup(va + 2*PageSize)
	if pi.Tag != 9 {
		t.Fatalf("tag = %d, want 9", pi.Tag)
	}
	// Mismatched expectation must fail atomically.
	if err := pt.Retag(va, 3, Tag(1), Tag(5)); err == nil {
		t.Fatal("retag with stale expected tag must fail")
	}
	pi, _ = pt.Lookup(va)
	if pi.Tag != 9 {
		t.Fatal("failed retag must not modify pages")
	}
	if err := pt.Retag(va+16*PageSize, 1, Tag(9), Tag(5)); err == nil {
		t.Fatal("retag of unmapped page must fail")
	}
}

func TestRetagPartialOverlapAtomic(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0x1000, 2, 0, Tag(3)); err != nil {
		t.Fatal(err)
	}
	// Third page unmapped: whole retag must fail and leave tags alone.
	if err := pt.Retag(0x1000, 3, Tag(3), Tag(4)); err == nil {
		t.Fatal("retag spanning unmapped page must fail")
	}
	pi, _ := pt.Lookup(0x1000)
	if pi.Tag != 3 {
		t.Fatal("atomicity violated")
	}
}

func TestSetFlags(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0x2000, 1, FlagWrite, Tag(1)); err != nil {
		t.Fatal(err)
	}
	if err := pt.SetFlags(0x2000, 1, FlagExec|FlagPrivCap); err != nil {
		t.Fatal(err)
	}
	pi, _ := pt.Lookup(0x2000)
	if pi.Flags.Has(FlagWrite) || !pi.Flags.Has(FlagPrivCap) {
		t.Fatalf("flags = %b", pi.Flags)
	}
	if pi.Tag != 1 {
		t.Fatal("SetFlags must preserve the tag")
	}
	if err := pt.SetFlags(0x9000, 1, 0); err == nil {
		t.Fatal("SetFlags on unmapped page must fail")
	}
}

func TestWalkDepth(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0x1000, 1, 0, NilTag); err != nil {
		t.Fatal(err)
	}
	if d := pt.WalkDepth(0x1000); d != numLevels {
		t.Fatalf("mapped walk depth = %d, want %d", d, numLevels)
	}
	// A far-away unmapped address aborts at level 1.
	if d := pt.WalkDepth(0x7fff00000000); d != 1 {
		t.Fatalf("unmapped walk depth = %d, want 1", d)
	}
}

func TestLookupRoundTripProperty(t *testing.T) {
	pt := NewPageTable()
	f := func(page uint32, tagRaw uint16) bool {
		va := Addr(page%1000000) * PageSize
		tag := Tag(tagRaw)
		if pi, ok := pt.Lookup(va); ok {
			return pi.Present()
		}
		if err := pt.Map(va, 1, FlagWrite, tag); err != nil {
			return false
		}
		pi, ok := pt.Lookup(va)
		return ok && pi.Tag == tag && pi.Present()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPagesInAndAlign(t *testing.T) {
	cases := []struct{ size, want int }{
		{0, 0}, {-1, 0}, {1, 1}, {PageSize, 1}, {PageSize + 1, 2}, {3 * PageSize, 3},
	}
	for _, c := range cases {
		if got := PagesIn(c.size); got != c.want {
			t.Fatalf("PagesIn(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	if PageAlign(1) != PageSize || PageAlign(PageSize) != PageSize {
		t.Fatal("PageAlign broken")
	}
}

func TestTLBHitMiss(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0x3000, 1, 0, Tag(2)); err != nil {
		t.Fatal(err)
	}
	tlb := NewTLB(4)
	if _, hit := tlb.Lookup(pt, 0x3000); hit {
		t.Fatal("first access should miss")
	}
	if _, hit := tlb.Lookup(pt, 0x3008); !hit {
		t.Fatal("second access to same page should hit")
	}
	h, m, _ := tlb.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats = %d hits %d misses", h, m)
	}
}

func TestTLBEvictionFIFO(t *testing.T) {
	pt := NewPageTable()
	for i := 0; i < 6; i++ {
		if err := pt.Map(Addr(i)*PageSize+0x100000, 1, 0, NilTag); err != nil {
			t.Fatal(err)
		}
	}
	tlb := NewTLB(4)
	for i := 0; i < 5; i++ { // fill + evict first
		tlb.Lookup(pt, Addr(i)*PageSize+0x100000)
	}
	if tlb.Len() != 4 {
		t.Fatalf("len = %d, want 4", tlb.Len())
	}
	if _, hit := tlb.Lookup(pt, 0x100000); hit {
		t.Fatal("oldest entry should have been evicted")
	}
}

func TestTLBFlushAndInvalidate(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0x4000, 2, 0, NilTag); err != nil {
		t.Fatal(err)
	}
	tlb := NewTLB(8)
	tlb.Lookup(pt, 0x4000)
	tlb.Lookup(pt, 0x5000)
	tlb.Invalidate(0x4000)
	if _, hit := tlb.Lookup(pt, 0x4000); hit {
		t.Fatal("invalidated entry hit")
	}
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Fatal("flush did not empty TLB")
	}
	_, _, flushes := tlb.Stats()
	if flushes != 1 {
		t.Fatalf("flushes = %d", flushes)
	}
}

func TestGlobalSpaceAllocFree(t *testing.T) {
	g := NewGlobalSpace(1<<30, 8<<30, 1<<30)
	a, err := g.AllocBlock("web")
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.AllocBlock("db")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("blocks collide")
	}
	if o, ok := g.Owner(a + 12345); !ok || o != "web" {
		t.Fatalf("owner = %q %v", o, ok)
	}
	if err := g.FreeBlock(a); err != nil {
		t.Fatal(err)
	}
	if err := g.FreeBlock(a); err == nil {
		t.Fatal("double free must fail")
	}
	c, err := g.AllocBlock("php")
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("freed block not reused: got %#x want %#x", uint64(c), uint64(a))
	}
}

func TestGlobalSpaceExhaustion(t *testing.T) {
	g := NewGlobalSpace(1<<30, 2<<30, 1<<30)
	if _, err := g.AllocBlock("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AllocBlock("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AllocBlock("c"); err == nil {
		t.Fatal("exhausted space must fail")
	}
}

func TestSuballoc(t *testing.T) {
	g := NewGlobalSpace(1<<30, 64<<30, 1<<30)
	s := NewSuballoc(g, "web")
	a, err := s.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(PageSize * 3)
	if err != nil {
		t.Fatal(err)
	}
	if b != a+PageSize {
		t.Fatalf("suballoc not bump-allocating: a=%#x b=%#x", uint64(a), uint64(b))
	}
	if g.Blocks() != 1 {
		t.Fatalf("blocks = %d, want 1 (both fit in one)", g.Blocks())
	}
	// A >1 GB allocation takes dedicated contiguous blocks.
	big, err := s.Alloc(int(3 << 30))
	if err != nil {
		t.Fatal(err)
	}
	if big%(1<<30) != 0 {
		t.Fatal("large allocation should be block aligned")
	}
	if g.Blocks() != 4 {
		t.Fatalf("blocks = %d, want 4", g.Blocks())
	}
	if _, err := s.Alloc(0); err == nil {
		t.Fatal("zero-size alloc must fail")
	}
}
