package mem

import "fmt"

// GlobalSpace is the global virtual-address-space allocator from §6.1.3:
// dIPC-enabled processes first allocate a whole block of virtual memory
// (1 GB in the paper's prototype) from a shared allocator, and then
// sub-allocate from their blocks locally. The two-phase split keeps the
// (contended) global step rare.
type GlobalSpace struct {
	blockSize Addr
	next      Addr
	limit     Addr
	free      []Addr
	owners    map[Addr]string // block base -> owner name (diagnostics)
	allocs    uint64          // number of global allocations (contention proxy)
}

// DefaultBlockSize is the paper's 1 GB global allocation unit.
const DefaultBlockSize Addr = 1 << 30

// NewGlobalSpace returns an allocator handing out blockSize-aligned
// blocks from [base, base+size).
func NewGlobalSpace(base, size Addr, blockSize Addr) *GlobalSpace {
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	return &GlobalSpace{
		blockSize: blockSize,
		next:      PageAlign(base),
		limit:     base + size,
		owners:    make(map[Addr]string),
	}
}

// BlockSize returns the global allocation unit.
func (g *GlobalSpace) BlockSize() Addr { return g.blockSize }

// Allocs returns how many global block allocations have happened; the
// dIPC layer uses this to model global-lock contention (§7.4 lists it as
// a measured inefficiency).
func (g *GlobalSpace) Allocs() uint64 { return g.allocs }

// AllocBlock reserves one block for owner and returns its base address.
func (g *GlobalSpace) AllocBlock(owner string) (Addr, error) {
	g.allocs++
	if n := len(g.free); n > 0 {
		b := g.free[n-1]
		g.free = g.free[:n-1]
		g.owners[b] = owner
		return b, nil
	}
	if g.next+g.blockSize > g.limit {
		return 0, fmt.Errorf("mem: global virtual address space exhausted")
	}
	b := g.next
	g.next += g.blockSize
	g.owners[b] = owner
	return b, nil
}

// FreeBlock returns a block to the allocator.
func (g *GlobalSpace) FreeBlock(base Addr) error {
	if _, ok := g.owners[base]; !ok {
		return fmt.Errorf("mem: freeing unowned block %#x", uint64(base))
	}
	delete(g.owners, base)
	g.free = append(g.free, base)
	return nil
}

// Owner returns the owner recorded for the block containing va.
func (g *GlobalSpace) Owner(va Addr) (string, bool) {
	base := va &^ (g.blockSize - 1)
	o, ok := g.owners[base]
	return o, ok
}

// Blocks returns the number of live blocks.
func (g *GlobalSpace) Blocks() int { return len(g.owners) }

// Suballoc is the per-process second phase: a bump allocator over blocks
// obtained from a GlobalSpace.
type Suballoc struct {
	g     *GlobalSpace
	owner string
	cur   Addr
	left  Addr
}

// NewSuballoc returns a sub-allocator for owner backed by g.
func NewSuballoc(g *GlobalSpace, owner string) *Suballoc {
	return &Suballoc{g: g, owner: owner}
}

// Alloc reserves size bytes (page-aligned) of virtual address space and
// returns the base. It pulls a fresh global block when the current one is
// exhausted; allocations larger than a block span consecutive dedicated
// blocks.
func (s *Suballoc) Alloc(size int) (Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("mem: alloc of non-positive size %d", size)
	}
	need := Addr(PagesIn(size) * PageSize)
	if need > s.g.blockSize {
		// Large allocation: take enough contiguous blocks. The global
		// allocator hands out blocks in increasing order when its free
		// list is empty, so grab fresh ones and verify contiguity.
		nblocks := int((need + s.g.blockSize - 1) / s.g.blockSize)
		base, err := s.g.AllocBlock(s.owner)
		if err != nil {
			return 0, err
		}
		prev := base
		for i := 1; i < nblocks; i++ {
			b, err := s.g.AllocBlock(s.owner)
			if err != nil {
				return 0, err
			}
			if b != prev+s.g.blockSize {
				return 0, fmt.Errorf("mem: cannot grow contiguous multi-block allocation")
			}
			prev = b
		}
		return base, nil
	}
	if need > s.left {
		b, err := s.g.AllocBlock(s.owner)
		if err != nil {
			return 0, err
		}
		s.cur = b
		s.left = s.g.blockSize
	}
	base := s.cur
	s.cur += need
	s.left -= need
	return base, nil
}
