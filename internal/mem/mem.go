// Package mem models the memory system underneath the simulated OS: a
// 4-level page table extended with the CODOMs per-page metadata (domain
// tag, privileged-capability bit, capability-storage bit), simple TLBs,
// and the global virtual-address-space allocator that dIPC's shared page
// table relies on (§6.1.3 of the paper).
package mem

import "fmt"

// Addr is a simulated 64-bit virtual (or physical) address.
type Addr uint64

// Page geometry, matching x86-64 4 KB pages with a 4-level table (9 bits
// per level, 48-bit canonical addresses).
const (
	PageShift      = 12
	PageSize       = 1 << PageShift
	levelBits      = 9
	entriesPerNode = 1 << levelBits
	numLevels      = 4
	// AddrBits is the width of translatable virtual addresses.
	AddrBits = PageShift + numLevels*levelBits // 48
)

// PageFlags are the per-page protection and CODOMs metadata bits.
type PageFlags uint8

const (
	// FlagPresent marks a mapped page.
	FlagPresent PageFlags = 1 << iota
	// FlagWrite allows stores (CODOMs still honours this bit even when
	// an APL grants write access to the page's domain, §4.1).
	FlagWrite
	// FlagExec allows instruction fetch.
	FlagExec
	// FlagPrivCap is the CODOMs privileged capability bit: code pages
	// carrying it may execute privileged instructions without a mode
	// switch (§4.1).
	FlagPrivCap
	// FlagCapStore is the CODOMs capability storage bit: capabilities
	// may be stored to and loaded from this page, and ordinary stores
	// to it are forbidden so user code cannot forge capabilities (§4.2).
	FlagCapStore
)

// Has reports whether all bits in mask are set.
func (f PageFlags) Has(mask PageFlags) bool { return f&mask == mask }

// Tag is a CODOMs domain tag. Page tables associate every page with a
// tag; the tag identifies the protection domain the page belongs to.
type Tag uint32

// NilTag is the zero tag, used for unmapped/untagged pages.
const NilTag Tag = 0

// PageInfo is the leaf page-table entry: translation plus protection.
type PageInfo struct {
	Flags PageFlags
	Tag   Tag
	Frame uint64 // simulated physical frame number
}

// Present reports whether the entry maps a page.
func (pi PageInfo) Present() bool { return pi.Flags.Has(FlagPresent) }

// node is one interior or leaf node of the radix page table.
type node struct {
	children [entriesPerNode]*node    // interior levels
	leaves   [entriesPerNode]PageInfo // level-1 only
}

// PageTable is a simulated 4-level page table. dIPC-enabled processes
// share one PageTable; conventional processes each own one.
type PageTable struct {
	root      *node
	mapped    int    // number of present leaf entries
	nextFrame uint64 // bump allocator for fresh physical frames
	gen       uint64 // bumped on every mutation; see Gen
}

// Gen returns the table's mutation generation: it changes whenever any
// mapping, tag or flag in the table changes. Layers that precompute
// translation-dependent state (dIPC's proxy call descriptors, cached
// capabilities) key their caches on it so a dom_remap or unmap
// invalidates them without a broadcast.
func (pt *PageTable) Gen() uint64 { return pt.gen }

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	return &PageTable{root: &node{}}
}

// Mapped returns the number of mapped pages.
func (pt *PageTable) Mapped() int { return pt.mapped }

// indices decomposes a virtual address into its four level indices
// (level 4 first).
func indices(va Addr) [numLevels]int {
	var ix [numLevels]int
	shift := uint(PageShift + (numLevels-1)*levelBits)
	for l := 0; l < numLevels; l++ {
		ix[l] = int(va>>shift) & (entriesPerNode - 1)
		shift -= levelBits
	}
	return ix
}

// walk returns the leaf node and final index for va, optionally creating
// intermediate nodes. depth reports how many levels were traversed, so
// callers can cost the walk.
func (pt *PageTable) walk(va Addr, create bool) (leaf *node, idx int, depth int) {
	ix := indices(va)
	n := pt.root
	for l := 0; l < numLevels-1; l++ {
		depth++
		child := n.children[ix[l]]
		if child == nil {
			if !create {
				return nil, 0, depth
			}
			child = &node{}
			n.children[ix[l]] = child
		}
		n = child
	}
	return n, ix[numLevels-1], depth + 1
}

// AllocFrame returns a fresh simulated physical frame number.
func (pt *PageTable) AllocFrame() uint64 {
	pt.nextFrame++
	return pt.nextFrame
}

// Map installs n contiguous pages starting at va with the given flags and
// domain tag, allocating fresh frames. It fails if any page is already
// mapped or va is not page-aligned.
func (pt *PageTable) Map(va Addr, n int, flags PageFlags, tag Tag) error {
	if va%PageSize != 0 {
		return fmt.Errorf("mem: map at unaligned address %#x", uint64(va))
	}
	for i := 0; i < n; i++ {
		a := va + Addr(i)*PageSize
		leaf, idx, _ := pt.walk(a, true)
		if leaf.leaves[idx].Present() {
			return fmt.Errorf("mem: page %#x already mapped", uint64(a))
		}
		leaf.leaves[idx] = PageInfo{Flags: flags | FlagPresent, Tag: tag, Frame: pt.AllocFrame()}
		pt.mapped++
		pt.gen++
	}
	return nil
}

// MapShared installs n pages at va that alias the frames backing src in
// srcTable (used for the "virtual copies" of shared libraries, whose code
// and read-only data point at the same physical memory, §6.1.3).
func (pt *PageTable) MapShared(va Addr, n int, flags PageFlags, tag Tag, srcTable *PageTable, src Addr) error {
	if va%PageSize != 0 || src%PageSize != 0 {
		return fmt.Errorf("mem: MapShared at unaligned address")
	}
	for i := 0; i < n; i++ {
		spi, ok := srcTable.Lookup(src + Addr(i)*PageSize)
		if !ok {
			return fmt.Errorf("mem: MapShared source %#x not mapped", uint64(src)+uint64(i)*PageSize)
		}
		a := va + Addr(i)*PageSize
		leaf, idx, _ := pt.walk(a, true)
		if leaf.leaves[idx].Present() {
			return fmt.Errorf("mem: page %#x already mapped", uint64(a))
		}
		leaf.leaves[idx] = PageInfo{Flags: flags | FlagPresent, Tag: tag, Frame: spi.Frame}
		pt.mapped++
		pt.gen++
	}
	return nil
}

// Unmap removes n pages starting at va. Unmapped pages are ignored.
func (pt *PageTable) Unmap(va Addr, n int) {
	for i := 0; i < n; i++ {
		a := va + Addr(i)*PageSize
		leaf, idx, _ := pt.walk(a, false)
		if leaf == nil {
			continue
		}
		if leaf.leaves[idx].Present() {
			leaf.leaves[idx] = PageInfo{}
			pt.mapped--
			pt.gen++
		}
	}
}

// Lookup translates va, returning its page info.
func (pt *PageTable) Lookup(va Addr) (PageInfo, bool) {
	leaf, idx, _ := pt.walk(va, false)
	if leaf == nil || !leaf.leaves[idx].Present() {
		return PageInfo{}, false
	}
	return leaf.leaves[idx], true
}

// WalkDepth returns the number of levels a hardware walker would touch
// translating va (used by the TLB-miss cost model).
func (pt *PageTable) WalkDepth(va Addr) int {
	_, _, depth := pt.walk(va, false)
	return depth
}

// Retag reassigns the domain tag of n pages starting at va, implementing
// dIPC's dom_remap (§5.2.2). Every page must be mapped and currently
// carry the expected tag; the operation is all-or-nothing.
func (pt *PageTable) Retag(va Addr, n int, expect, to Tag) error {
	// Validation pass.
	for i := 0; i < n; i++ {
		pi, ok := pt.Lookup(va + Addr(i)*PageSize)
		if !ok {
			return fmt.Errorf("mem: retag of unmapped page %#x", uint64(va)+uint64(i)*PageSize)
		}
		if pi.Tag != expect {
			return fmt.Errorf("mem: retag tag mismatch at %#x: page has %d, want %d",
				uint64(va)+uint64(i)*PageSize, pi.Tag, expect)
		}
	}
	for i := 0; i < n; i++ {
		leaf, idx, _ := pt.walk(va+Addr(i)*PageSize, false)
		leaf.leaves[idx].Tag = to
		pt.gen++
	}
	return nil
}

// SetFlags replaces the protection flags of n pages starting at va,
// preserving presence, tag and frame.
func (pt *PageTable) SetFlags(va Addr, n int, flags PageFlags) error {
	for i := 0; i < n; i++ {
		leaf, idx, _ := pt.walk(va+Addr(i)*PageSize, false)
		if leaf == nil || !leaf.leaves[idx].Present() {
			return fmt.Errorf("mem: SetFlags on unmapped page %#x", uint64(va)+uint64(i)*PageSize)
		}
		leaf.leaves[idx].Flags = flags | FlagPresent
		pt.gen++
	}
	return nil
}

// PagesIn returns how many pages cover size bytes.
func PagesIn(size int) int {
	if size <= 0 {
		return 0
	}
	return (size + PageSize - 1) / PageSize
}

// PageAlign rounds a up to the next page boundary.
func PageAlign(a Addr) Addr {
	return (a + PageSize - 1) &^ (PageSize - 1)
}
